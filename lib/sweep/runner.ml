module Dfg = Cgra_dfg.Dfg
module Benchmarks = Cgra_dfg.Benchmarks
module Lib = Cgra_arch.Library
module Adl = Cgra_arch.Adl
module Build = Cgra_mrrg.Build
module IM = Cgra_core.Ilp_mapper
module Formulation = Cgra_core.Formulation
module Solve = Cgra_ilp.Solve
module Deadline = Cgra_util.Deadline

type variant = { name : string; engine : Solve.engine; warm_start : float }

let default_variant = { name = "sat"; engine = Solve.Sat_backed; warm_start = 5.0 }

(* The portfolio: the SAT engine raced cold (fast on easy cells and on
   infeasibility proofs, where warm-start time is pure loss) and warm
   (wins on hard feasible cells), plus the independent branch-and-bound
   engine as a third, structurally different prover. *)
let portfolio_variants =
  [
    { name = "sat-cold"; engine = Solve.Sat_backed; warm_start = 0.0 };
    { name = "sat-warm"; engine = Solve.Sat_backed; warm_start = 5.0 };
    { name = "bnb"; engine = Solve.Branch_and_bound; warm_start = 0.0 };
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_benchmark name =
  match Benchmarks.by_name name with
  | Some dfg -> Ok dfg
  | None ->
      if Sys.file_exists name then Dfg.of_text (read_file name)
      else Error (Printf.sprintf "unknown benchmark %S" name)

let load_arch ~size name =
  match Lib.find_config ~size name with
  | Some config -> Ok (Lib.make config)
  | None ->
      if Sys.file_exists name then Adl.of_string (read_file name)
      else Error (Printf.sprintf "unknown architecture %S" name)

(* Every invocation elaborates its own DFG/arch/MRRG so that racing
   variants share no mutable structure at all — elaboration is
   microseconds against solves of seconds. *)
let prepare (job : Job.t) =
  match load_benchmark job.Job.benchmark with
  | Error e -> Error e
  | Ok dfg -> (
      match load_arch ~size:job.Job.size job.Job.arch with
      | Error e -> Error e
      | Ok arch -> Ok (dfg, Build.elaborate arch ~ii:job.Job.contexts))

let deadline_of (job : Job.t) =
  if job.Job.limit <= 0.0 then Deadline.none else Deadline.after ~seconds:job.Job.limit

let record_of_result (job : Job.t) ~engine ~total_seconds result =
  let status, (info : IM.info) =
    match result with
    | IM.Mapped (_, info) -> (Record.Feasible, info)
    | IM.Infeasible info -> (Record.Infeasible, info)
    | IM.Timeout info -> (Record.Timeout, info)
  in
  {
    Record.job;
    status;
    engine;
    total_seconds;
    solve_seconds = info.IM.solve_seconds;
    build_seconds = info.IM.build_seconds;
    sat_calls = info.IM.sat_calls;
    presolve_fixed = info.IM.presolve_fixed;
    certified = info.IM.certified;
    core =
      (match info.IM.diagnosis with
      | Some d -> d.IM.core
      | None -> []);
  }

let run_variant ?cancel ?certify ?explain (variant : variant) (job : Job.t) =
  let t0 = Deadline.now () in
  match prepare job with
  | Error msg -> Record.error job msg
  | Ok (dfg, mrrg) -> (
      let warm_start =
        if job.Job.limit > 0.0 then Float.min variant.warm_start (job.Job.limit /. 4.0)
        else variant.warm_start
      in
      match
        IM.map ~objective:Formulation.Feasibility ~engine:variant.engine
          ~deadline:(deadline_of job) ?cancel ~warm_start ?certify ?explain dfg mrrg
      with
      | result ->
          record_of_result job ~engine:variant.name
            ~total_seconds:(Deadline.elapsed_of ~start:t0) result
      | exception e ->
          { (Record.error job (Printexc.to_string e)) with
            Record.total_seconds = Deadline.elapsed_of ~start:t0;
            engine = variant.name;
          })

let run ?cancel ?certify ?explain (job : Job.t) =
  run_variant ?cancel ?certify ?explain default_variant job
