lib/util/log_setup.mli: Logs
