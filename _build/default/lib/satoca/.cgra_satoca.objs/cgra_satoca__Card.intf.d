lib/satoca/card.mli: Lit Solver
