lib/core/configgen.mli: Cgra_dfg Cgra_mrrg Mapping
