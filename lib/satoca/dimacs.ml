(* DIMACS allows any blank separator, not just single spaces: real
   files mix tabs, runs of spaces and CRLF line endings. *)
let split_ws s =
  let out = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun ch ->
      match ch with
      | ' ' | '\t' | '\r' | '\012' -> flush ()
      | _ -> Buffer.add_char buf ch)
    s;
  flush ();
  List.rev !out

let parse text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> error := Some (Printf.sprintf "bad literal %S" tok)
    | Some 0 ->
        clauses := List.rev !current :: !clauses;
        current := []
    | Some d -> current := Lit.of_dimacs d :: !current
  in
  List.iter
    (fun line ->
      if !error = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' then ()
        else if line.[0] = 'p' then begin
          match split_ws line with
          | [ "p"; "cnf"; nv; _nc ] -> (
              match int_of_string_opt nv with
              | Some n -> nvars := n
              | None -> error := Some "bad p-line")
          | _ -> error := Some "bad p-line"
        end
        else List.iter handle_token (split_ws line))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !current <> [] then Error "clause not terminated by 0"
      else begin
        let clauses = List.rev !clauses in
        let maxv =
          List.fold_left
            (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
            0 clauses
        in
        Ok ((if !nvars >= 0 then max !nvars maxv else maxv), clauses)
      end

let load solver text =
  match parse text with
  | Error e -> Error e
  | Ok (nv, clauses) ->
      let missing = nv - Solver.nvars solver in
      if missing > 0 then ignore (Solver.new_vars solver missing);
      List.iter (Solver.add_clause solver) clauses;
      Ok ()

let print ~nvars clauses =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "p cnf %d %d\n" nvars (List.length clauses));
  List.iter
    (fun c ->
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "%d " (Lit.to_dimacs l))) c;
      Buffer.add_string buf "0\n")
    clauses;
  Buffer.contents buf
