(** Cardinality constraints over literals, clausified into a solver.

    These encodings turn the pseudo-Boolean constraints of the mapping
    ILP (at-most-one route usage, exactly-one placement, bounded
    objective) into CNF.  All encodings are {e arc-consistent}: unit
    propagation alone enforces the bound. *)

type encoding = Pairwise | Sequential
(** At-most-one flavours: [Pairwise] adds n(n-1)/2 binary clauses (best
    for small n); [Sequential] adds a commander-style ladder with O(n)
    clauses and auxiliary variables.  {!at_most_one} picks automatically
    when not forced. *)

val at_most_one : ?encoding:encoding -> Solver.t -> Lit.t list -> unit
(** At most one of the literals is true. *)

val at_least_one : Solver.t -> Lit.t list -> unit
(** Simply the clause over the literals. *)

val exactly_one : ?encoding:encoding -> Solver.t -> Lit.t list -> unit

val at_most_k : Solver.t -> Lit.t list -> int -> unit
(** Sequential-counter encoding of [sum lits <= k].  [k >= 0]. *)

val at_least_k : Solver.t -> Lit.t list -> int -> unit
(** [sum lits >= k], by [at_most (n-k)] on the negated literals. *)

(** Incremental totalizer: builds a sorting tree over the literals whose
    output literals [o_1 .. o_n] satisfy (o_j true iff at least j inputs
    are true).  The objective-descent loop of the ILP solver strengthens
    the bound by asserting [~o_{k+1}] units without re-encoding. *)
module Totalizer : sig
  type t

  val build : Solver.t -> Lit.t list -> t
  (** Clausify the tree; inputs may repeat. *)

  val outputs : t -> Lit.t array
  (** [outputs.(j)] is the literal "at least j+1 inputs true". *)

  val assert_at_most : t -> int -> unit
  (** [assert_at_most t k] adds units forcing [sum <= k]; monotone —
      later calls may only lower [k].  The unit is permanent; prefer
      {!bound_lit} with {!Solver.solve_with} when the bound should not
      outlive one solve (e.g. so a DRAT trace can certify the final
      bound, or to keep the clause database reusable under a different
      bound later). *)

  val bound_lit : t -> int -> Lit.t option
  (** [bound_lit t k] is the literal meaning [sum <= k] — the negated
      output [~o_{k+1}] — meant to be passed to {!Solver.solve_with} as
      an assumption, enforcing the bound for one solve without
      committing the clause database to it.  [None] when [k] is at
      least the input count (the bound is vacuous).  Does not affect
      the monotone {!assert_at_most} state.
      @raise Invalid_argument on a negative bound. *)
end
