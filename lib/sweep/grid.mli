(** Render a journal back into the paper's Table-2 feasibility grid.

    Rows are benchmarks in Table-1 order, columns are architectures in
    Table-2 order (all single-context columns first); cells print [1]
    (feasible), [0] (proven infeasible), [T] (timeout), [E] (error) or
    [.] (not in the journal).  When the journal holds several records
    for one job — e.g. a rerun appended to the same file — the latest
    line wins.  A totals row and the paper's §5 runtime summary close
    the table. *)

val render : Record.t list -> string

val latest_by_key : Record.t list -> (string, Record.t) Hashtbl.t
(** The journal's effective contents: last record per {!Job.key}. *)
