lib/satoca/dimacs.ml: Buffer List Lit Printf Solver String
