lib/arch/adl.mli: Arch
