(** The ILP mapper: the paper's end-to-end flow (Fig. 7, ILP side).

    Builds the formulation from a DFG and an MRRG, hands it to an exact
    0-1 engine, and extracts a verified mapping.  Because the engines
    are complete, [Infeasible] is a {e proof} that no mapping exists —
    the property that distinguishes this mapper from heuristics. *)

module Dfg := Cgra_dfg.Dfg
module Mrrg := Cgra_mrrg.Mrrg

type diagnosis = {
  core : string list;
      (** constraint-group labels ([place:]/[excl:]/[route:val], see
          {!Formulation.group_subject}) whose conjunction with the hard
          rows is infeasible *)
  core_minimized : bool;
      (** dropping any single group makes the remainder satisfiable *)
  core_verified : bool;
      (** the core was re-solved from scratch and confirmed infeasible
          ({!Cgra_ilp.Unsat_core.check}); [false] only when the
          deadline expired before verification finished *)
  core_sat_calls : int;  (** incremental SAT calls spent on extraction *)
  conflict_ops : string list;      (** operations named by [place:] groups *)
  conflict_values : string list;
      (** values named by [route:] groups, rendered producer -> sinks *)
  conflict_resources : string list;  (** MRRG nodes named by [excl:] groups *)
}
(** An infeasibility explanation in mapping vocabulary: which placement,
    routing and exclusivity obligations cannot be met together. *)

type info = {
  size : Formulation.size;
  solve_seconds : float;
  build_seconds : float;
  build_phases : (string * float) list;
      (** {!Formulation.profile_fields} of the model construction:
          labelled wall-clock seconds per encode phase ([placement],
          [corridors], [routing_rows], [exclusivity], [total]).
          [build_seconds] additionally includes the warm-start attempt;
          [build_phases] is the formulation alone. *)
  objective_value : int option;  (** routing cost when optimising *)
  proven_optimal : bool;
  sat_calls : int;               (** SAT invocations; 0 for non-SAT engines *)
  presolve_fixed : int;          (** variables eliminated by presolve *)
  certified : bool;
      (** the verdict carries validated evidence: a {!Check}-accepted
          mapping for [Mapped], a {!Cgra_satoca.Drat}-validated
          refutation for a certified [Infeasible]; always [false] for
          [Timeout] and for uncertified [Infeasible] runs *)
  proof_steps : int;             (** DRAT derivation steps logged; 0 unless certifying *)
  inprocess : (string * int) list;
      (** per-pass SAT inprocessing counters ([subsumed],
          [strengthened], [eliminated], [probed_failed], [substituted])
          of the solver behind the verdict; empty when no in-process
          SAT solver ran (external backends, pure B&B feasible
          answers) *)
  diagnosis : diagnosis option;
      (** present only for an [Infeasible] verdict under [~explain:true]
          whose core extraction finished before the deadline *)
}

type result =
  | Mapped of Mapping.t * info
  | Infeasible of info
  | Timeout of info

val map :
  ?objective:Formulation.objective ->
  ?engine:Cgra_ilp.Solve.engine ->
  ?backend:string ->
  ?formulation:string ->
  ?deadline:Cgra_util.Deadline.t ->
  ?cancel:bool Atomic.t ->
  ?prune:bool ->
  ?warm_start:float ->
  ?certify:bool ->
  ?explain:bool ->
  ?inprocess:Cgra_satoca.Inprocess.config ->
  Dfg.t ->
  Mrrg.t ->
  result
(** Defaults: [Feasibility] objective (a Table 2 style query),
    SAT-backed engine, no deadline, corridor pruning on.  Mappings are
    checked with {!Check} before being returned.

    [backend] selects a solver backend from
    {!Cgra_backend.Registry} by name.  A native backend
    (["native-sat"], ["native-bnb"]) routes through the standard
    in-process path with the corresponding engine — [certify],
    [explain] and [warm_start] all work.  An external backend
    (["highs"], ["cbc"], ["scip"]) exports the model as an LP file,
    runs the solver as a subprocess under the deadline, and replays the
    parsed answer: the assignment is checked row-by-row against the
    model, the objective is recomputed, and the extracted mapping must
    pass {!Check.run}, so a [Mapped] verdict is [certified] exactly
    like a native one.  An external [Infeasible] is the solver's word
    and stays [certified = false] (no DRAT trace exists); [explain]
    still works (the native core extractor re-derives the conflict),
    and the sweep's [--cross-check] exists to diff such verdicts.
    [warm_start] is forced to 0 on external backends.  A formulation
    backend (["conn-sat"], ["conn-bnb"]) names a
    {!Formulation_intf} entry plus a native engine and routes through
    the standard in-process path — [certify], [explain] and
    [warm_start] all work, exactly as for a native backend.
    @raise Cgra_backend.Backend.Error on an unknown backend name, a
    missing solver binary, or an external answer that fails replay.

    [formulation] selects the constraint structure by
    {!Formulation_intf} registry name (default
    {!Formulation_intf.default_name}, the paper's per-edge sub-value
    model).  Every downstream stage — presolve, SAT encoding,
    certification, explanation, {!Check.run} validation — is
    formulation-agnostic, so any registered formulation gets the full
    pipeline.  When [backend] names a formulation backend, that wins
    over [formulation].
    @raise Cgra_backend.Backend.Error on an unknown formulation name.

    {b Reentrancy.}  [map] is the single-job entry point of the
    parallel sweep engine: it holds no global mutable state — the
    formulation, the solver instance and the annealer's RNG are all
    created per call — so concurrent calls from several domains are
    safe, provided each call gets its own [Dfg.t]/[Mrrg.t] (or shares
    frozen, no-longer-mutated ones read-only).

    [cancel] attaches a shared cancellation flag to every deadline the
    call polls (including the warm start's internal deadline): raising
    the flag from any domain makes the call return [Timeout] at the
    engine's next poll.  Portfolio racing uses this to stop losing
    engines.

    [warm_start] (default 5 seconds; 0 disables) bounds a quick
    annealing attempt whose verified solution, when found, seeds the
    exact engine's variable phases — the standard embedded-heuristic
    warm start of production MIP solvers.  Completeness is unaffected:
    the answer is still decided by the exact engine.

    [certify] (default [false]) makes an [Infeasible] verdict carry a
    DRAT refutation, independently re-validated by
    {!Cgra_satoca.Drat.check} before the call returns; presolve is
    bypassed for the certified solve and the B&B engine cross-certifies
    through a proof-logging SAT run (see {!Cgra_ilp.Solve.solve}).
    [info.certified] reports whether the returned verdict carries
    validated evidence; a certificate cut short by the deadline yields
    [certified = false], not a failure.

    [explain] (default [false]) makes an [Infeasible] verdict carry a
    {!diagnosis}: a group-level unsat core extracted with
    {!Cgra_ilp.Unsat_core}, minimized and independently re-verified
    under the same deadline, then translated back to DFG/MRRG terms.
    A deadline hit during extraction leaves [diagnosis = None].
    @raise Failure if the solver returns an assignment the independent
    checker rejects, a DRAT certificate the independent checker
    refutes, or an unsat core that re-solves satisfiable (each would be
    a bug, not an input error). *)

val result_feasible : result -> bool
val pp_result : Format.formatter -> result -> unit

val pp_diagnosis : Format.formatter -> diagnosis -> unit
(** Multi-line rendering of a diagnosis: the core's labels followed by
    the conflicting operations, values and resources. *)
