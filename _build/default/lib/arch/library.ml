type topology = Orthogonal | Diagonal
type fu_mix = Homogeneous | Heterogeneous

type config = { rows : int; cols : int; topology : topology; fu_mix : fu_mix }

let default = { rows = 4; cols = 4; topology = Orthogonal; fu_mix = Homogeneous }

let block name part = Printf.sprintf "b%s_%s" name part
let block_name ~row ~col = Printf.sprintf "%d_%d" row col
let block_fu ~row ~col = block (block_name ~row ~col) "fu"
let block_out ~row ~col = { Arch.inst = block (block_name ~row ~col) "reg"; port = "out" }

(* Retained for API compatibility and for architecture variants: the
   combinational ALU output.  In the bus-based baseline below it feeds
   only the block-internal register path, not the interconnect. *)
let block_fu_out ~row ~col = { Arch.inst = block (block_name ~row ~col) "fu"; port = "out" }

let has_multiplier config ~row ~col =
  match config.fu_mix with Homogeneous -> true | Heterogeneous -> (row + col) mod 2 = 0

let neighbour_offsets = function
  | Orthogonal -> [ (-1, 0); (1, 0); (0, -1); (0, 1) ]
  | Diagonal -> [ (-1, 0); (1, 0); (0, -1); (0, 1); (-1, -1); (-1, 1); (1, -1); (1, 1) ]

(* I/O pads on the periphery: one per edge position.  Like the
   row-shared memory ports of Fig. 6, each pad is wired to the 32-bit
   bus of its row (left/right pads) or column (top/bottom pads): its
   output is readable by every block on that bus and its input
   multiplexer selects among their outputs. *)
let io_pads config =
  List.concat
    [
      List.init config.cols (fun c -> (Printf.sprintf "io_t%d" c, `Col c));
      List.init config.cols (fun c -> (Printf.sprintf "io_b%d" c, `Col c));
      List.init config.rows (fun r -> (Printf.sprintf "io_l%d" r, `Row r));
      List.init config.rows (fun r -> (Printf.sprintf "io_r%d" r, `Row r));
    ]

let pad_covers config bus ~row ~col =
  ignore config;
  match bus with `Row r -> r = row | `Col c -> c = col

let pad_blocks config bus =
  match bus with
  | `Row r -> List.init config.cols (fun c -> (r, c))
  | `Col c -> List.init config.rows (fun r -> (r, c))

let make config =
  if config.rows < 1 || config.cols < 1 then invalid_arg "Library.make: empty grid";
  let b =
    Arch.Builder.create
      ~name:
        (Printf.sprintf "%s-%s-%dx%d"
           (match config.fu_mix with Homogeneous -> "homo" | Heterogeneous -> "hetero")
           (match config.topology with Orthogonal -> "orth" | Diagonal -> "diag")
           config.rows config.cols)
      ()
  in
  let in_bounds (r, c) = r >= 0 && r < config.rows && c >= 0 && c < config.cols in
  let pads = io_pads config in
  (* The ordered list of sources feeding a block's input muxes:
     neighbouring block outputs, the row memory port, the block's own
     registered output (accumulator feedback), and the pads whose bus
     covers this block. *)
  let mux_sources ~row ~col =
    let neighbours =
      neighbour_offsets config.topology
      |> List.filter_map (fun (dr, dc) ->
             let r = row + dr and c = col + dc in
             if in_bounds (r, c) then Some (block_out ~row:r ~col:c) else None)
    in
    let mem = { Arch.inst = Printf.sprintf "mem%d" row; port = "out" } in
    let feedback = block_out ~row ~col in
    let bus_pads =
      List.filter_map
        (fun (pad, bus) ->
          if pad_covers config bus ~row ~col then Some { Arch.inst = pad; port = "out" }
          else None)
        pads
    in
    neighbours @ [ mem; feedback ] @ bus_pads
  in
  (* blocks: two operand muxes feed the ALU; a bypass mux provides the
     block's route-through lane; the output register captures either
     the ALU result or the bypassed value, and drives the block's
     single output bus *)
  for row = 0 to config.rows - 1 do
    for col = 0 to config.cols - 1 do
      let nm part = block (block_name ~row ~col) part in
      let sources = mux_sources ~row ~col in
      let k = List.length sources in
      Arch.Builder.add b (nm "mux_a") (Primitive.Multiplexer k);
      Arch.Builder.add b (nm "mux_b") (Primitive.Multiplexer k);
      Arch.Builder.add b (nm "mux_bp") (Primitive.Multiplexer k);
      Arch.Builder.add b (nm "reg_mux") (Primitive.Multiplexer 2);
      Arch.Builder.add b (nm "fu") (Primitive.alu ~with_mul:(has_multiplier config ~row ~col) ());
      Arch.Builder.add b (nm "reg") Primitive.Register;
      Arch.Builder.connect b
        ~src:{ Arch.inst = nm "mux_a"; port = "out" }
        ~dst:{ Arch.inst = nm "fu"; port = "in0" };
      Arch.Builder.connect b
        ~src:{ Arch.inst = nm "mux_b"; port = "out" }
        ~dst:{ Arch.inst = nm "fu"; port = "in1" };
      Arch.Builder.connect b
        ~src:{ Arch.inst = nm "fu"; port = "out" }
        ~dst:{ Arch.inst = nm "reg_mux"; port = "in0" };
      Arch.Builder.connect b
        ~src:{ Arch.inst = nm "mux_bp"; port = "out" }
        ~dst:{ Arch.inst = nm "reg_mux"; port = "in1" };
      Arch.Builder.connect b
        ~src:{ Arch.inst = nm "reg_mux"; port = "out" }
        ~dst:{ Arch.inst = nm "reg"; port = "in" }
    done
  done;
  (* memory ports, one per row, with address and data muxes fed by the
     row's blocks *)
  for row = 0 to config.rows - 1 do
    let mem = Printf.sprintf "mem%d" row in
    Arch.Builder.add b mem Primitive.mem_port;
    Arch.Builder.add b (mem ^ "_mux_a") (Primitive.Multiplexer config.cols);
    Arch.Builder.add b (mem ^ "_mux_d") (Primitive.Multiplexer config.cols);
    Arch.Builder.connect b
      ~src:{ Arch.inst = mem ^ "_mux_a"; port = "out" }
      ~dst:{ Arch.inst = mem; port = "in0" };
    Arch.Builder.connect b
      ~src:{ Arch.inst = mem ^ "_mux_d"; port = "out" }
      ~dst:{ Arch.inst = mem; port = "in1" };
    for col = 0 to config.cols - 1 do
      let src = block_out ~row ~col in
      Arch.Builder.connect b ~src
        ~dst:{ Arch.inst = mem ^ "_mux_a"; port = Printf.sprintf "in%d" col };
      Arch.Builder.connect b ~src
        ~dst:{ Arch.inst = mem ^ "_mux_d"; port = Printf.sprintf "in%d" col }
    done
  done;
  (* I/O pads: the pad input mux selects among its bus's block outputs;
     the pad output is a mux source for those same blocks *)
  List.iter
    (fun (pad, bus) ->
      let blocks = pad_blocks config bus in
      Arch.Builder.add b pad Primitive.io_pad;
      Arch.Builder.add b (pad ^ "_imux") (Primitive.Multiplexer (List.length blocks));
      List.iteri
        (fun i (row, col) ->
          Arch.Builder.connect b ~src:(block_out ~row ~col)
            ~dst:{ Arch.inst = pad ^ "_imux"; port = Printf.sprintf "in%d" i })
        blocks;
      Arch.Builder.connect b
        ~src:{ Arch.inst = pad ^ "_imux"; port = "out" }
        ~dst:{ Arch.inst = pad; port = "in0" })
    pads;
  (* operand/bypass mux input wiring *)
  for row = 0 to config.rows - 1 do
    for col = 0 to config.cols - 1 do
      let nm part = block (block_name ~row ~col) part in
      List.iteri
        (fun i src ->
          let port = Printf.sprintf "in%d" i in
          Arch.Builder.connect b ~src ~dst:{ Arch.inst = nm "mux_a"; port };
          Arch.Builder.connect b ~src ~dst:{ Arch.inst = nm "mux_b"; port };
          Arch.Builder.connect b ~src ~dst:{ Arch.inst = nm "mux_bp"; port })
        (mux_sources ~row ~col)
    done
  done;
  Arch.Builder.freeze b

let topology_to_string = function Orthogonal -> "orth" | Diagonal -> "diag"
let fu_mix_to_string = function Homogeneous -> "homo" | Heterogeneous -> "hetero"

let paper_configs ~size =
  [
    ("hetero-orth", { rows = size; cols = size; topology = Orthogonal; fu_mix = Heterogeneous });
    ("hetero-diag", { rows = size; cols = size; topology = Diagonal; fu_mix = Heterogeneous });
    ("homo-orth", { rows = size; cols = size; topology = Orthogonal; fu_mix = Homogeneous });
    ("homo-diag", { rows = size; cols = size; topology = Diagonal; fu_mix = Homogeneous });
  ]

let find_config ~size name = List.assoc_opt name (paper_configs ~size)
