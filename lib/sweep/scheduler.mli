(** The sweep work queue: fan a job list out over OCaml 5 domains.

    Workers claim jobs from a shared atomic counter, so the schedule is
    dynamic (long jobs do not stall the queue) while the result list
    stays in input order — the answers are deterministic regardless of
    worker count, only timings vary.  A job that raises records
    [Error] and the sweep continues; a worker can never die with jobs
    still queued.

    [on_event] is serialised by a mutex, so callbacks may write to
    shared channels (progress lines, the JSONL {!Store}) without their
    own locking; exceptions it raises are swallowed. *)

type event =
  | Job_started of { index : int; total : int; worker : int; job : Job.t }
  | Job_finished of { index : int; total : int; worker : int; record : Record.t }

type stats = {
  ran : int;           (** jobs executed *)
  skipped : int;       (** jobs dropped by [skip] (resume) *)
  wall_seconds : float;
}

val run :
  ?jobs:int ->
  ?portfolio:bool ->
  ?certify:bool ->
  ?explain:bool ->
  ?skip:(Job.t -> bool) ->
  ?on_event:(event -> unit) ->
  Job.t list ->
  Record.t list * stats
(** [run ~jobs job_list] executes the non-skipped jobs on [jobs]
    workers (the calling domain plus [jobs - 1] spawned ones; default
    1) and returns their records in input order.  [portfolio] races
    {!Runner.portfolio_variants} per job instead of the single default
    engine.  [certify] requests DRAT-certified verdicts from every job
    (see {!Runner.run_variant}).  [explain] journals a constraint-group
    unsat core with every [Infeasible] record (the definitive 0-cells
    of the Table-2 grid).  [skip] implements resume: skipped jobs
    produce no record here (their records already live in the
    journal). *)
