(** Polymorphic growable array (companion to {!Veci}). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val size : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only elements satisfying the predicate, preserving order. *)
