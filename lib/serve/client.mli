(** Client side of the daemon protocol: connect, send a request line,
    read the response line.

    Used by [cgra_map client], the serve benchmark and the end-to-end
    tests.  Errors are strings, never exceptions — a vanished daemon is
    an ordinary outcome for a client. *)

type t

val connect : socket:string -> (t, string) result

val close : t -> unit

val roundtrip : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response.  [Error] covers
    connection loss and malformed response lines (a protocol-level
    error {e reply} is an [Ok] carrying [Error_reply]). *)

val one_shot : socket:string -> Protocol.request -> (Protocol.response, string) result
(** Connect, roundtrip once, close. *)
