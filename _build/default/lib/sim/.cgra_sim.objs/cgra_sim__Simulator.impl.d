lib/sim/simulator.ml: Array Cgra_arch Cgra_core Cgra_dfg Cgra_mrrg Cgra_util Hashtbl List Option Printf String
