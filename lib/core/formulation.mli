(** The paper's ILP formulation (§4): DFG × MRRG → 0-1 model.

    Three families of binary variables are created (paper §4.1):
    - [F(p,q)] — operation [q] executes on functional-unit node [p];
      created only when [p] supports [q]'s operation, which realises
      the Functional Unit Legality constraint (3) by omission;
    - [R(i,j)] — routing node [i] carries value [j];
    - [R(i,j,k)] — routing node [i] carries value [j] on its way to
      sink [k] (one sink per sub-value, paper Fig. 5).

    Constraints (1)–(9) and objective (10) are emitted as described in
    the paper, with two implementation refinements documented in
    DESIGN.md: sub-value variables exist only on routing nodes that lie
    on some producer→sink corridor (an exactness-preserving pruning),
    and operand routing is positional (each sink terminates at the
    operand port its DFG edge names), which on the symmetric-mux test
    architectures loses no mappings. *)

module Dfg := Cgra_dfg.Dfg
module Mrrg := Cgra_mrrg.Mrrg
module Ilp := Cgra_ilp

type objective =
  | Feasibility        (** decide mappability only (Table 2) *)
  | Min_routing        (** paper objective (10): minimise used routing nodes *)
  | Weighted of (Mrrg.node -> int)
      (** §4.2's weighted variant, e.g. penalising power-hungry nodes *)

and t = {
  model : Ilp.Model.t;
  dfg : Dfg.t;
  mrrg : Mrrg.t;
  values : Dfg.value array;      (** value index [j] -> producer and sinks *)
  f_vars : ((int * int), Ilp.Model.var) Hashtbl.t;
      (** (mrrg func node [p], dfg op [q]) -> F variable *)
  r_vars : ((int * int), Ilp.Model.var) Hashtbl.t;
      (** (mrrg route node [i], value [j]) -> R variable *)
  rk_vars : ((int * int * int), Ilp.Model.var) Hashtbl.t;
      (** (route node [i], value [j], sink [k]) -> sub-value variable *)
}

val candidates : Dfg.t -> Mrrg.t -> int -> int list
(** Functional-unit nodes able to host a DFG operation (constraint (3)
    by construction).  Shared with the annealing mapper. *)

type profile = {
  placement_seconds : float;
      (** variables and rows for constraints (1)–(3) *)
  corridor_seconds : float;
      (** forward-cone and per-sink corridor closures (graph traversal
          only, no row emission) *)
  routing_seconds : float;
      (** rows for constraints (5)–(9), corridor time excluded *)
  exclusivity_seconds : float;
      (** constraint (4) and the objective *)
  total_seconds : float;
}
(** Wall-clock phase split of one model construction. *)

val profile_fields : profile -> (string * float) list
(** The profile as labelled seconds, in emission order
    ([placement]; [corridors]; [routing_rows]; [exclusivity]; [total])
    — the shape journaled by benchmarks and serve provenance. *)

val build :
  ?objective:objective ->
  ?prune:bool ->
  ?anchor_sinks:bool ->
  ?backward_continuity:bool ->
  Dfg.t ->
  Mrrg.t ->
  t
(** Construct the full model.  The three flags select
    exactness-preserving refinements over the literal paper
    formulation, all on by default; turning them off reproduces the
    paper's constraint set verbatim and is used by the ablation
    benchmarks and equivalence tests:
    - [prune]: restrict sub-value variables to producer→sink
      reachability corridors;
    - [anchor_sinks]: strengthen constraint (6) to an equality at the
      sink's operand port;
    - [backward_continuity]: require every used corridor node to have a
      used predecessor (the dual of constraint (5)). *)

val build_profiled :
  ?objective:objective ->
  ?prune:bool ->
  ?anchor_sinks:bool ->
  ?backward_continuity:bool ->
  Dfg.t ->
  Mrrg.t ->
  t * profile
(** {!build} plus its phase timings.  This is the implementation;
    [build] is [fst ∘ build_profiled].  The builder is corridor-sparse:
    instead of scanning every MRRG node per sink, it iterates packed
    {!Cgra_mrrg.Mrrg.corridor} bitsets, memoizes forward cones by
    producer-candidate set, and defers variable/row name rendering
    until something (LP export, explain, validation) asks for them. *)

val build_reference :
  ?objective:objective ->
  ?prune:bool ->
  ?anchor_sinks:bool ->
  ?backward_continuity:bool ->
  Dfg.t ->
  Mrrg.t ->
  t
(** The pre-optimization dense-scan builder, retained verbatim as the
    differential-testing oracle: for every input it must produce a
    model whose LP rendering is byte-identical to {!build}'s.  The
    formulation-differential fuzz invariant and the equivalence tests
    enforce this; do not optimise it. *)

(** {1 Constraint groups}

    Every row [build] emits is tagged with a named constraint group
    (the [?group] of {!Ilp.Model.add_row}), so an infeasibility core
    extracted by {!Ilp.Unsat_core} reads directly in mapping terms:
    - [place:<op>] — constraint (1) for operation [<op>] (exactly one
      placement);
    - [excl:<node>] — constraint (2) or (4): exclusive use of the
      functional-unit or routing node [<node>];
    - [route:val<j>] — constraints (5)–(9) and corridor-pruning
      implications for value [j] (its complete routing obligation). *)

type group_subject =
  | Placement of string    (** operation name from a [place:] label *)
  | Exclusivity of string  (** MRRG node name from an [excl:] label *)
  | Routing of int         (** value index from a [route:val] label *)

val group_subject : string -> group_subject option
(** Parse a group label back into the entity it constrains; [None] for
    labels this formulation never emits. *)

val value_description : t -> int -> string
(** Human-readable [producer -> sink.op, ...] rendering of value [j].
    @raise Invalid_argument on an out-of-range index. *)

val describe_group : t -> string -> string
(** One-line English description of a group label (falls back to the
    label itself for foreign labels). *)

type size = { n_f : int; n_r : int; n_rk : int; n_rows : int }

val size : t -> size
val pp_size : Format.formatter -> size -> unit
