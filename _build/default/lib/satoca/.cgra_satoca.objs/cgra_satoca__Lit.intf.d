lib/satoca/lit.mli: Format
