type status = Feasible | Infeasible | Timeout | Error of string

type t = {
  job : Job.t;
  status : status;
  engine : string;
  total_seconds : float;
  solve_seconds : float;
  build_seconds : float;
  sat_calls : int;
  presolve_fixed : int;
  certified : bool;
  core : string list;
}

let error job msg =
  {
    job;
    status = Error msg;
    engine = "-";
    total_seconds = 0.0;
    solve_seconds = 0.0;
    build_seconds = 0.0;
    sat_calls = 0;
    presolve_fixed = 0;
    certified = false;
    core = [];
  }

let status_to_string = function
  | Feasible -> "feasible"
  | Infeasible -> "infeasible"
  | Timeout -> "timeout"
  | Error _ -> "error"

let definitive r = match r.status with Feasible | Infeasible -> true | Timeout | Error _ -> false

let to_json r =
  let base =
    [
      ("benchmark", Jsonl.Str r.job.Job.benchmark);
      ("arch", Jsonl.Str r.job.Job.arch);
      ("size", Jsonl.Num (float_of_int r.job.Job.size));
      ("contexts", Jsonl.Num (float_of_int r.job.Job.contexts));
      ("limit", Jsonl.Num r.job.Job.limit);
      ("status", Jsonl.Str (status_to_string r.status));
      ("engine", Jsonl.Str r.engine);
      ("total_seconds", Jsonl.Num r.total_seconds);
      ("solve_seconds", Jsonl.Num r.solve_seconds);
      ("build_seconds", Jsonl.Num r.build_seconds);
      ("sat_calls", Jsonl.Num (float_of_int r.sat_calls));
      ("presolve_fixed", Jsonl.Num (float_of_int r.presolve_fixed));
      ("certified", Jsonl.Bool r.certified);
    ]
  in
  let extra = match r.status with Error msg -> [ ("message", Jsonl.Str msg) ] | _ -> [] in
  (* [core] is journaled only when an explanation was extracted, so
     plain sweeps keep their compact lines. *)
  let core =
    match r.core with
    | [] -> []
    | groups -> [ ("core", Jsonl.List (List.map (fun g -> Jsonl.Str g) groups)) ]
  in
  Jsonl.Obj (base @ core @ extra)

let of_json j =
  let str k = Option.bind (Jsonl.member k j) Jsonl.to_str in
  let num k = Option.bind (Jsonl.member k j) Jsonl.to_float in
  let int_field k = Option.bind (Jsonl.member k j) Jsonl.to_int in
  match (str "benchmark", str "arch", int_field "size", int_field "contexts", str "status") with
  | Some benchmark, Some arch, Some size, Some contexts, Some status_s ->
      let status =
        match status_s with
        | "feasible" -> Ok Feasible
        | "infeasible" -> Ok Infeasible
        | "timeout" -> Ok Timeout
        | "error" -> Ok (Error (Option.value ~default:"" (str "message")))
        | other -> Stdlib.Error (Printf.sprintf "unknown status %S" other)
      in
      Result.map
        (fun status ->
          {
            job =
              {
                Job.benchmark;
                arch;
                size;
                contexts;
                limit = Option.value ~default:0.0 (num "limit");
              };
            status;
            engine = Option.value ~default:"-" (str "engine");
            total_seconds = Option.value ~default:0.0 (num "total_seconds");
            solve_seconds = Option.value ~default:0.0 (num "solve_seconds");
            build_seconds = Option.value ~default:0.0 (num "build_seconds");
            sat_calls = Option.value ~default:0 (int_field "sat_calls");
            presolve_fixed = Option.value ~default:0 (int_field "presolve_fixed");
            (* absent in pre-certification journals: read as uncertified *)
            certified =
              Option.value ~default:false
                (Option.bind (Jsonl.member "certified" j) Jsonl.to_bool);
            (* absent in pre-explanation journals: read as no core *)
            core =
              (match Jsonl.member "core" j with
              | Some (Jsonl.List items) -> List.filter_map Jsonl.to_str items
              | _ -> []);
          })
        status
  | _ -> Stdlib.Error "missing required field (benchmark/arch/size/contexts/status)"

let to_line r = Jsonl.to_string (to_json r)

let of_line line =
  match Jsonl.of_string line with Ok j -> of_json j | Error e -> Stdlib.Error e

let pp fmt r =
  Format.fprintf fmt "%a %s (%s, %.2fs)" Job.pp r.job (status_to_string r.status) r.engine
    r.total_seconds
