lib/core/ilp_mapper.ml: Anneal Array Cgra_dfg Cgra_ilp Cgra_util Check Extract Format Formulation Hashtbl List Mapping Printf String
