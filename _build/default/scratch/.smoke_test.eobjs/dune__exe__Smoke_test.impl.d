scratch/smoke_test.ml: Cgra_arch Cgra_core Cgra_dfg Cgra_mrrg Cgra_util Format Option Printf Sys
